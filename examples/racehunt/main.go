// Racehunt: differential fuzzing of the three detectors through the
// public API. Random structured-future programs are executed under
// SF-Order, F-Order, and MultiBags; all three must agree on the set of
// racy locations (they implement the same detection problem with very
// different machinery, so agreement on random inputs is strong
// evidence of correctness — the internal test suite additionally checks
// them against an exhaustive oracle).
//
//	go run ./examples/racehunt [-programs 50] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sforder"
)

var (
	programs = flag.Int("programs", 50, "number of random programs")
	seed     = flag.Int64("seed", 1, "starting seed")
)

func main() {
	flag.Parse()
	mismatches := 0
	racy := 0
	for s := *seed; s < *seed+int64(*programs); s++ {
		prog := buildProgram(s)
		var sets [3][]uint64
		for i, det := range []sforder.Detector{sforder.SFOrder, sforder.FOrder, sforder.MultiBags} {
			res, err := sforder.Run(sforder.Config{Detector: det, Serial: true}, prog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "seed %d %v: %v\n", s, det, err)
				os.Exit(1)
			}
			sets[i] = racyAddrs(res.Races)
		}
		if !equal(sets[0], sets[1]) || !equal(sets[0], sets[2]) {
			fmt.Fprintf(os.Stderr, "seed %d: detectors disagree: SF=%v F=%v MB=%v\n",
				s, sets[0], sets[1], sets[2])
			mismatches++
		}
		if len(sets[0]) > 0 {
			racy++
		}
	}
	fmt.Printf("racehunt: %d programs, %d with races, %d detector mismatches\n",
		*programs, racy, mismatches)
	if mismatches > 0 {
		os.Exit(1)
	}
}

// buildProgram makes a deterministic random program: a tree of spawns
// and futures whose leaves read/write a small shared address space.
func buildProgram(seed int64) func(*sforder.Task) {
	type node struct {
		children []*node  // bodies of spawned/created tasks
		future   []bool   // future (true) or spawn (false)
		accesses [][2]int // (addr, isWrite)
		getAfter []int    // indices of children (futures) to get, -1 sync
	}
	rng := rand.New(rand.NewSource(seed))
	var gen func(depth int) *node
	gen = func(depth int) *node {
		n := &node{}
		steps := 1 + rng.Intn(6)
		for i := 0; i < steps; i++ {
			switch r := rng.Intn(10); {
			case r < 4:
				n.accesses = append(n.accesses, [2]int{rng.Intn(6), rng.Intn(2)})
				n.getAfter = append(n.getAfter, -2) // marker: access
			case r < 7 && depth > 0:
				n.children = append(n.children, gen(depth-1))
				n.future = append(n.future, rng.Intn(2) == 0)
				n.getAfter = append(n.getAfter, -3-(len(n.children)-1)) // marker: launch child i
			default:
				n.getAfter = append(n.getAfter, -1) // marker: sync
			}
		}
		return n
	}
	root := gen(3)

	var runNode func(t *sforder.Task, n *node)
	runNode = func(t *sforder.Task, n *node) {
		var futs []*sforder.Future
		ai := 0
		for _, step := range n.getAfter {
			switch {
			case step == -2: // access
				acc := n.accesses[ai]
				ai++
				if acc[1] == 1 {
					t.Write(uint64(acc[0]))
				} else {
					t.Read(uint64(acc[0]))
				}
			case step == -1: // sync, then harvest pending futures
				t.Sync()
				for _, f := range futs {
					t.Get(f)
				}
				futs = nil
			default: // launch child
				ci := -step - 3
				child := n.children[ci]
				if n.future[ci] {
					futs = append(futs, t.Create(func(c *sforder.Task) any {
						runNode(c, child)
						return nil
					}))
				} else {
					t.Spawn(func(c *sforder.Task) { runNode(c, child) })
				}
			}
		}
		t.Sync()
		for _, f := range futs {
			t.Get(f)
		}
	}
	return func(t *sforder.Task) { runNode(t, root) }
}

func racyAddrs(races []sforder.Race) []uint64 {
	seen := map[uint64]bool{}
	for _, r := range races {
		seen[r.Addr] = true
	}
	out := make([]uint64, 0, len(seen))
	for a := uint64(0); a < 64; a++ {
		if seen[a] {
			out = append(out, a)
		}
	}
	return out
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Pipeline: a ferret-style four-stage similarity-search pipeline built
// from chained futures, race-detected on the fly — the "interesting
// application features that traditional fork-join parallelism could not
// achieve" use case from the paper's introduction.
//
// Each query flows segment → extract → index → rank, with every stage a
// future that gets its predecessor; different queries overlap freely.
// Stage s of query q can run while stage s+1 of query q-1 runs — a
// dependence structure fork-join cannot express without serializing
// whole stages.
//
//	go run ./examples/pipeline [-q 16] [-dim 256] [-detector sforder|forder|multibags]
package main

import (
	"flag"
	"fmt"
	"os"

	"sforder"
)

var (
	q        = flag.Int("q", 16, "number of queries")
	dim      = flag.Int("dim", 256, "feature vector length")
	detector = flag.String("detector", "sforder", "sforder, forder, multibags")
)

func main() {
	flag.Parse()
	det, ok := map[string]sforder.Detector{
		"sforder":   sforder.SFOrder,
		"forder":    sforder.FOrder,
		"multibags": sforder.MultiBags,
	}[*detector]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown detector %q\n", *detector)
		os.Exit(2)
	}

	nq, d := *q, *dim
	input := make([]int32, nq*d)
	for i := range input {
		input[i] = int32((i*2654435761 + 101) % 1021)
	}
	seg := make([]int32, nq*d)
	feat := make([]int32, nq*d)
	rank := make([]int32, nq)

	// Shadow layout: input, seg, feat, rank consecutive.
	aInput := func(i int) uint64 { return uint64(i) }
	aSeg := func(i int) uint64 { return uint64(nq*d + i) }
	aFeat := func(i int) uint64 { return uint64(2*nq*d + i) }
	aRank := func(i int) uint64 { return uint64(3*nq*d + i) }

	res, err := sforder.Run(sforder.Config{Detector: det, Workers: 4}, func(t *sforder.Task) {
		finals := make([]*sforder.Future, nq)
		for qi := 0; qi < nq; qi++ {
			qi := qi
			off := qi * d

			hSeg := t.Create(func(c *sforder.Task) any {
				for i := 0; i < d; i++ {
					c.Read(aInput(off + i))
					c.Write(aSeg(off + i))
					seg[off+i] = input[off+i] / 3
				}
				return nil
			})
			hFeat := t.Create(func(c *sforder.Task) any {
				c.Get(hSeg)
				for i := 0; i < d; i++ {
					c.Read(aSeg(off + i))
					c.Write(aFeat(off + i))
					feat[off+i] = seg[off+i] % 31
				}
				return nil
			})
			finals[qi] = t.Create(func(c *sforder.Task) any {
				c.Get(hFeat)
				var best int32
				for i := 0; i < d; i++ {
					c.Read(aFeat(off + i))
					if feat[off+i] > best {
						best = feat[off+i]
					}
				}
				c.Write(aRank(qi))
				rank[qi] = best
				return best
			})
		}
		// Serial output stage.
		for qi := 0; qi < nq; qi++ {
			t.Get(finals[qi])
			t.Read(aRank(qi))
		}
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("pipeline: %d queries × %d dims, detector %v\n", nq, d, det)
	fmt.Printf("  futures  %d\n", res.Futures-1)
	fmt.Printf("  strands  %d\n", res.Strands)
	fmt.Printf("  queries  %d reachability queries\n", res.Queries)
	fmt.Printf("  races    %d (want 0 — stages are chained by gets)\n", res.RaceCount)
	fmt.Printf("  ranks    %v...\n", rank[:minInt(8, nq)])
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
